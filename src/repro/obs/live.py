"""Live campaign progress: a reporter thread over the metrics registry.

While a campaign runs, a single daemon thread periodically reads the
process-global :mod:`repro.obs.metrics` registry (the runner's
``campaign.*`` counters and gauges) plus the backend's optional
``live_workers()`` self-report and renders one progress line:

* on a TTY, the line redraws in place (``\\r``, padded to cover the
  previous render) -- a classic single-line progress display;
* on anything else (CI logs, pipes), each render appends one plain
  ``live: ...`` line instead -- greppable, no control characters -- and
  the reporter guarantees at least an opening and a closing line even
  for campaigns faster than one interval.

The reporter is an *observer*: it never touches result rows, stores, or
the backend, so campaigns stay byte-identical with the live view on or
off.  All numbers come from the metrics registry, which is exactly the
point of having one -- the live view, ``repro stats``, and the trend
recorder share a single instrumentation layer instead of three.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional

from . import metrics


class LiveReporter:
    """Render campaign progress from the metrics registry.

    Args:
        total: scenarios the campaign will resolve (the ETA denominator).
        backend: the active backend; if it exposes ``live_workers()``
            (the socket backend does), a compact per-worker table is
            appended to each render.
        stream: output stream (default ``sys.stderr``; tests pass a
            ``StringIO``).  ``stream.isatty()`` selects redraw vs append
            mode.
        interval: seconds between renders.
    """

    def __init__(self, total: int, backend: Any = None,
                 stream: Any = None, interval: float = 0.5) -> None:
        self.total = total
        self.backend = backend
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._stop = threading.Event()
        self._started = time.perf_counter()
        self._last_width = 0
        self._thread = threading.Thread(
            target=self._run, name="live-reporter", daemon=True,
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "LiveReporter":
        self._started = time.perf_counter()
        self._render()  # guaranteed opening line, even on fast campaigns
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=max(self.interval * 4, 2.0))
        self._render(final=True)  # guaranteed closing line with the totals
        if self._isatty:
            self.stream.write("\n")  # leave the final render on screen
            self.stream.flush()

    def __enter__(self) -> "LiveReporter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._render()

    # -- rendering -----------------------------------------------------

    def _render(self, final: bool = False) -> None:
        try:
            line = self.compose(final=final)
        except Exception:  # noqa: BLE001 - a broken render must never
            # take the campaign down; the live view is best-effort only.
            return
        if self._isatty:
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self.stream.write("\r" + padded)
        else:
            self.stream.write(line + "\n")
        try:
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def compose(self, final: bool = False) -> str:
        """One progress line from the current registry state."""
        registry = metrics.current()
        # Quarantined rows are a subset of failed, so they are not added
        # separately -- completed + failed covers every resolved job.
        done = int(
            registry.value("campaign.completed")
            + registry.value("campaign.failed")
        )
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        rate = done / elapsed
        parts = [
            f"live: {done}/{self.total} done",
            f"{rate:.1f}/s",
            self._eta(done, rate, final),
        ]
        for label, name in (
            ("cached", "campaign.cached"),
            ("failed", "campaign.failed"),
            ("quarantined", "campaign.quarantined"),
            ("sharded", "campaign.sharded"),
        ):
            value = int(registry.value(name))
            if value:
                parts.append(f"{label} {value}")
        workers = self._worker_cells()
        if workers:
            parts.append("workers " + " ".join(workers))
        if final:
            parts.append(f"wall {elapsed:.1f}s")
        return " | ".join(parts)

    def _eta(self, done: int, rate: float, final: bool) -> str:
        if final or done >= self.total:
            return "done"
        if rate <= 0:
            return "eta ?"
        return f"eta {(self.total - done) / rate:.1f}s"

    def _worker_cells(self) -> List[str]:
        """Compact per-worker cells from the backend's wire-v6 report."""
        live_workers = getattr(self.backend, "live_workers", None)
        if live_workers is None:
            return []
        cells = []
        for row in live_workers():
            bits = [f"{row.get('worker')}:"
                    f"{row.get('inflight', 0)}/w{row.get('window', 1)}"]
            if row.get("queue") is not None:
                bits.append(f"q{row['queue']}")
            if row.get("exec/s") is not None:
                bits.append(f"{row['exec/s']}/s")
            if row.get("rtt_ms") is not None:
                bits.append(f"{row['rtt_ms']}ms")
            cells.append("[" + " ".join(str(b) for b in bits) + "]")
        return cells


def render_worker_table(rows: List[Dict[str, Any]]) -> str:
    """A full per-worker table (the ``--live`` final summary and tests).

    Lazy reporting import, like :mod:`repro.obs.stats` -- importing the
    reporting layer at module scope from inside ``repro.obs`` would be
    cyclic.
    """
    from ..reporting.render import format_table

    if not rows:
        return "live: no workers"
    display = [
        {key: ("" if row.get(key) is None else row.get(key))
         for key in ("worker", "inflight", "window", "rtt_ms",
                     "queue", "done", "exec/s", "completed")}
        for row in rows
    ]
    return format_table(
        display,
        ["worker", "inflight", "window", "rtt_ms", "queue", "done",
         "exec/s", "completed"],
        title=f"workers: {len(rows)}",
    )
