"""Cross-run trend history: schema-stamped run summaries + regression gate.

One campaign produces one :func:`make_record` -- scenarios, wall,
throughput, phase shares, cache hit rates, backend, ``cpu_count`` --
appended to a history JSONL (``repro campaign --trend PATH``,
``Experiment.run(trend=...)``, and ``benchmarks/test_bench_backends.py``
all write the same format).  Across runs the file becomes the perf
trajectory the ROADMAP's ``repro serve`` trend dashboards will sit on:

* ``repro trend HISTORY`` renders per-label sparkline tables across runs;
* ``repro trend HISTORY --check`` exits nonzero when the latest run's
  throughput regresses below a tolerance of the rolling baseline (the
  mean of the previous ``window`` runs with the same label) or a phase's
  wall-clock share balloons past the baseline by more than an absolute
  slack -- the CI bench-trend gate.

Like :mod:`repro.obs.stats`, the renderer borrows ``format_table`` /
``sparkline`` from the reporting layer *lazily* (importing them at module
scope from inside ``repro.obs`` would be cyclic: reporting imports the
runtime, which imports obs).
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

#: Version stamp on every trend record; readers refuse the future.
TREND_SCHEMA_VERSION = 1

#: Rolling-baseline length: the latest record is compared against the
#: mean of up to this many predecessors with the same label.
DEFAULT_WINDOW = 5

#: The latest run must reach this fraction of the baseline throughput.
DEFAULT_TOLERANCE = 0.9

#: A phase's wall-clock share may exceed its baseline by at most this
#: many percentage points before --check calls it ballooned.
DEFAULT_SHARE_SLACK = 15.0


def phase_shares(telemetry_rows: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """``{phase: share_%}`` from a telemetry sink's phase breakdown
    (phases without a computable share are skipped)."""
    from .stats import phase_breakdown

    return {
        row["phase"]: row["share_%"]
        for row in phase_breakdown(telemetry_rows)
        if isinstance(row["share_%"], (int, float))
    }


def cache_hit_rates(
    telemetry_rows: Sequence[Dict[str, Any]],
) -> Dict[str, float]:
    """Aggregate ``{cache: hit_rate}`` over every ``job`` event's ``perf``
    sidecar (the worker-side :func:`repro.perf.cache_report` shipped back
    per job); empty when jobs carried no perf stats."""
    hits: Dict[str, int] = {}
    misses: Dict[str, int] = {}
    for row in telemetry_rows:
        if row.get("kind") != "event" or row.get("name") != "job":
            continue
        perf = (row.get("attrs") or {}).get("perf") or {}
        for cache, stats in perf.items():
            if not isinstance(stats, dict):
                continue
            hits[cache] = hits.get(cache, 0) + int(stats.get("hits") or 0)
            misses[cache] = misses.get(cache, 0) + int(stats.get("misses") or 0)
    rates = {}
    for cache in sorted(hits):
        total = hits[cache] + misses.get(cache, 0)
        if total:
            rates[cache] = round(hits[cache] / total, 4)
    return rates


def make_record(
    *,
    label: str,
    scenarios: int,
    wall_s: float,
    backend: Optional[str] = None,
    phase_share: Optional[Dict[str, float]] = None,
    cache_hit_rate: Optional[Dict[str, float]] = None,
    wall: Optional[float] = None,
) -> Dict[str, Any]:
    """One schema-stamped run-summary record (JSON-ready dict)."""
    return {
        "schema": TREND_SCHEMA_VERSION,
        "label": label,
        # A real wall-clock timestamp (when this run happened), never
        # subtracted from anything.  # repro: allow[D-wallclock]
        "wall": round(time.time() if wall is None else wall, 3),
        "scenarios": int(scenarios),
        "wall_s": round(float(wall_s), 4),
        "scen_per_s": round(scenarios / wall_s, 2) if wall_s > 0 else 0.0,
        "backend": backend,
        "cpu_count": os.cpu_count(),
        "phase_share": dict(sorted((phase_share or {}).items())),
        "cache_hit_rate": dict(sorted((cache_hit_rate or {}).items())),
    }


def append_record(path: Union[str, Path], record: Dict[str, Any]) -> None:
    """Append one record to the history JSONL (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a trend history back into records, oldest first.

    Raises ``ValueError`` on undecodable lines or records stamped with a
    schema this reader does not understand; ``FileNotFoundError`` when
    the history does not exist yet.
    """
    records: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{number}: undecodable trend record: {exc}"
            ) from exc
        if not isinstance(record, dict) or "label" not in record:
            raise ValueError(f"{path}:{number}: not a trend record")
        schema = record.get("schema")
        if schema != TREND_SCHEMA_VERSION:
            raise ValueError(
                f"{path}:{number}: trend schema {schema!r} is not "
                f"supported (this reader speaks {TREND_SCHEMA_VERSION})"
            )
        records.append(record)
    return records


def _grouped(
    records: Sequence[Dict[str, Any]],
) -> "OrderedDict[str, List[Dict[str, Any]]]":
    """Records bucketed by label, file order preserved within a label."""
    groups: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
    for record in records:
        groups.setdefault(str(record.get("label")), []).append(record)
    return groups


def _baseline(history: Sequence[Dict[str, Any]],
              window: int) -> List[Dict[str, Any]]:
    """The rolling-baseline slice: up to ``window`` records preceding the
    latest one."""
    return list(history[max(0, len(history) - 1 - window):-1])


def render_trend(records: Sequence[Dict[str, Any]]) -> str:
    """Per-label trend table with a throughput sparkline across runs."""
    from ..reporting.render import format_table, sparkline

    if not records:
        return "trend: no records"
    table = []
    for label, history in _grouped(records).items():
        rates = [float(r.get("scen_per_s") or 0.0) for r in history]
        last = history[-1]
        baseline = _baseline(history, DEFAULT_WINDOW)
        base_rate = (sum(float(r.get("scen_per_s") or 0.0)
                         for r in baseline) / len(baseline)
                     if baseline else None)
        table.append({
            "label": label,
            "runs": len(history),
            "backend": last.get("backend") or "",
            "scen/s": rates[-1],
            "best": max(rates),
            "vs_base": (f"{rates[-1] / base_rate:.2f}x"
                        if base_rate else ""),
            "trend": sparkline(rates),
        })
    lines = [format_table(
        table,
        ["label", "runs", "backend", "scen/s", "best", "vs_base", "trend"],
        title=f"trend: {len(records)} run record(s)",
    )]
    return "\n".join(lines)


def check_trend(
    records: Sequence[Dict[str, Any]],
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    share_slack: float = DEFAULT_SHARE_SLACK,
) -> List[str]:
    """Regression messages for the latest run of every label.

    Empty list = healthy.  A label with fewer than two records has no
    baseline and is never flagged.  Checks, per label:

    * throughput: latest ``scen_per_s`` >= ``tolerance`` x the mean of
      the previous ``window`` runs;
    * phase shares: no phase's latest ``share_%`` exceeds its baseline
      mean by more than ``share_slack`` percentage points (phases absent
      from the baseline are skipped -- new instrumentation is not a
      regression).
    """
    problems: List[str] = []
    for label, history in _grouped(records).items():
        baseline = _baseline(history, window)
        if not baseline:
            continue
        last = history[-1]
        base_rate = (sum(float(r.get("scen_per_s") or 0.0) for r in baseline)
                     / len(baseline))
        last_rate = float(last.get("scen_per_s") or 0.0)
        if base_rate > 0 and last_rate < tolerance * base_rate:
            problems.append(
                f"{label}: throughput regressed to {last_rate:.2f} scen/s "
                f"(< {tolerance:.0%} of rolling baseline {base_rate:.2f})"
            )
        last_shares = last.get("phase_share") or {}
        for phase, share in sorted(last_shares.items()):
            base_shares = [
                float((r.get("phase_share") or {}).get(phase))
                for r in baseline
                if (r.get("phase_share") or {}).get(phase) is not None
            ]
            if not base_shares:
                continue
            base_share = sum(base_shares) / len(base_shares)
            if float(share) > base_share + share_slack:
                problems.append(
                    f"{label}: phase '{phase}' share ballooned to "
                    f"{float(share):.1f}% (baseline {base_share:.1f}% "
                    f"+ {share_slack:.0f}pt slack)"
                )
    return problems


def main_trend(
    path: Union[str, Path],
    check: bool = False,
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    share_slack: float = DEFAULT_SHARE_SLACK,
) -> int:
    """``python -m repro trend HISTORY [--check]``.

    Exit 0 on a healthy (or merely rendered) history, 1 when ``--check``
    finds a regression, 2 on a missing or unreadable history file.
    """
    import sys

    try:
        records = load_history(path)
    except FileNotFoundError:
        print(f"error: no such trend history: {path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_trend(records))
    if not check:
        return 0
    problems = check_trend(records, window=window, tolerance=tolerance,
                           share_slack=share_slack)
    if problems:
        for problem in problems:
            print(f"REGRESSION {problem}", file=sys.stderr)
        return 1
    print(f"trend check OK: {len(records)} record(s), no regressions")
    return 0
