"""Aggregate a telemetry sink into phase/worker breakdowns: ``repro stats``.

Everything here renders *from the sink alone* -- no result store, no live
campaign -- so a telemetry file mailed from a remote run is enough to
answer "where did the wall-clock go".  Three views:

* **phase breakdown** -- per-phase totals across every job: execute,
  serialize, queue wait, in-flight, worker-side deserialize/queue, the
  residual wire+dispatch overhead, store appends, lock wait;
* **per-worker utilization** -- busy time, window occupancy, completed
  jobs, and ping RTTs per socket worker;
* **wall-clock summary** -- the campaign span against the accounted
  phases, quantifying exactly how much of a <1x-speedup backend's time
  is overhead rather than execution;
* **resilience summary** -- every recovery action the backend took
  (connect retries, reconnects, worker deaths, requeues, job resends,
  poison probes, quarantines, degradation) so a chaotic campaign's
  survival story is visible next to its timings.

Rendering reuses :func:`repro.reporting.render.format_table` and
:func:`~repro.reporting.render.sparkline` (imported lazily: this module
sits above the reporting layer, and importing it from ``repro.obs``'s
``__init__`` would be cyclic -- see the package docstring).
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .spans import load_telemetry

#: Job-event phase fields, in pipeline order, with display labels.
#: ``queue_s`` overlaps other jobs' phases by construction (every queued
#: job waits concurrently), so it is reported but excluded from the
#: accounted-time arithmetic.
_JOB_PHASES = (
    ("queue_s", "queue wait*"),
    ("serialize_s", "serialize"),
    ("inflight_s", "in flight"),
    ("deser_s", "deserialize (worker)"),
    ("worker_queue_s", "queue (worker)"),
    ("exec_s", "execute"),
)

#: Span names folded into the breakdown as their own phases.
_SPAN_PHASES = (
    ("store.lock", "lock wait"),
    ("store.append", "store append"),
    ("store.sync", "store sync"),
)

#: Recovery events, in escalation order, with display labels.
_RESILIENCE_EVENTS = (
    ("socket.retry", "connect retry"),
    ("socket.unexpected_frame", "unexpected frame"),
    ("socket.resend", "job resend"),
    ("socket.worker_dead", "worker death"),
    ("socket.requeue", "requeue"),
    ("socket.reconnect", "reconnect"),
    ("socket.probe", "poison probe"),
    ("socket.quarantine", "quarantine"),
    ("backend.degraded", "degraded to local"),
)


def _events(rows: Sequence[Dict[str, Any]], name: str) -> List[Dict[str, Any]]:
    return [row for row in rows
            if row.get("kind") == "event" and row.get("name") == name]


def _spans(rows: Sequence[Dict[str, Any]], name: str) -> List[Dict[str, Any]]:
    return [row for row in rows
            if row.get("kind") == "span" and row.get("name") == name]


def campaign_wall(rows: Sequence[Dict[str, Any]]) -> Optional[float]:
    """Wall-clock seconds of the (last) campaign span, if recorded."""
    spans = _spans(rows, "campaign")
    if not spans:
        return None
    return float(spans[-1].get("dur") or 0.0)


def _union_seconds(intervals: Sequence[tuple]) -> float:
    """Total length of the union of ``(start, stop)`` intervals.

    Overlap collapses: ten jobs queueing through the same second
    contribute one second, not ten -- the property that keeps a phase's
    wall-clock share at or below 100%.
    """
    total = 0.0
    edge: Optional[float] = None
    for start, stop in sorted(intervals):
        if edge is None or start > edge:
            total += stop - start
            edge = stop
        elif stop > edge:
            total += stop - edge
            edge = stop
    return total


def phase_breakdown(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-phase totals over every ``job`` event and store/lock span.

    Returns table rows ``{phase, count, total_s, mean_ms, share_%}``.
    ``total_s`` sums per-job durations, so concurrent phases (every
    queued job waits at once) can legitimately exceed the wall clock.
    ``share_%`` answers a different question -- "what fraction of the
    campaign wall saw this phase active?" -- so it reconstructs each
    job's phase *intervals* on the telemetry clock (job events are
    emitted at batch completion; phases are laid out backwards from
    ``at`` on the driver side and forwards from batch receipt on the
    worker side) and divides the union of those intervals by the wall.
    By construction every share is <= 100%, no matter how many jobs
    overlap.  Blank without a campaign span.

    Includes a synthetic ``wire+dispatch`` phase: the driver-computed
    ``wire_s`` attribute when present (batched frames: in-flight residual
    split evenly across the batch), else the per-job residual ``inflight
    - deserialize - worker queue - execute`` -- time a job was in flight
    but provably not executing: framing, TCP, and driver loop overhead.
    """
    jobs = _events(rows, "job")
    wall = campaign_wall(rows)
    spans = _spans(rows, "campaign")
    clip: Optional[tuple] = None
    if spans:
        last = spans[-1]
        if last.get("start") is not None and last.get("dur") is not None:
            start = float(last["start"])
            clip = (start, start + float(last["dur"]))

    totals: Dict[str, List[float]] = defaultdict(list)
    intervals: Dict[str, List[tuple]] = defaultdict(list)

    def mark(label: str, start: float, stop: float) -> None:
        if clip is not None:
            start, stop = max(start, clip[0]), min(stop, clip[1])
        if stop > start:
            intervals[label].append((start, stop))

    for job in jobs:
        attrs = job.get("attrs") or {}
        for field, label in _JOB_PHASES:
            value = attrs.get(field)
            if value is not None:
                totals[label].append(float(value))
        inflight = attrs.get("inflight_s")
        wire = attrs.get("wire_s")
        if wire is not None:
            wire = float(wire)
            totals["wire+dispatch"].append(wire)
        elif inflight is not None:
            residual = float(inflight)
            for field in ("deser_s", "worker_queue_s", "exec_s"):
                residual -= float(attrs.get(field) or 0.0)
            wire = max(residual, 0.0)
            totals["wire+dispatch"].append(wire)

        at = job.get("at")
        if at is None:
            continue
        at = float(at)
        exec_s = float(attrs.get("exec_s") or 0.0)
        if inflight is None:
            # Local (serial/pool/degraded) job: only execute is known,
            # ending at the event timestamp.
            mark("execute", at - exec_s, at)
            continue
        # Socket job: the event fires when its batch's results frame
        # lands, so the batch was in flight over [at - inflight, at].
        # Driver-side phases precede dispatch; worker-side phases are
        # laid out forward from batch receipt (~ dispatch), each job's
        # worker queue_s already offsetting it past its batch-mates.
        inflight = float(inflight)
        batch_start = at - inflight
        mark("in flight", batch_start, at)
        serialize = float(attrs.get("serialize_s") or 0.0)
        mark("serialize", batch_start - serialize, batch_start)
        queue = float(attrs.get("queue_s") or 0.0)
        mark("queue wait*", batch_start - serialize - queue,
             batch_start - serialize)
        worker_queue = float(attrs.get("worker_queue_s") or 0.0)
        mark("queue (worker)", batch_start, batch_start + worker_queue)
        deser = float(attrs.get("deser_s") or 0.0)
        mark("deserialize (worker)", batch_start + worker_queue,
             batch_start + worker_queue + deser)
        mark("execute", batch_start + worker_queue + deser,
             batch_start + worker_queue + deser + exec_s)
        if wire:
            mark("wire+dispatch", at - wire, at)

    for span_name, label in _SPAN_PHASES:
        for span in _spans(rows, span_name):
            dur = float(span.get("dur") or 0.0)
            totals[label].append(dur)
            if span.get("start") is not None:
                mark(label, float(span["start"]), float(span["start"]) + dur)
    for connect in _events(rows, "socket.connect"):
        value = (connect.get("attrs") or {}).get("dur_s")
        if value is not None:
            totals["connect"].append(float(value))
            if connect.get("at") is not None:
                mark("connect", float(connect["at"]) - float(value),
                     float(connect["at"]))

    order = [label for _, label in _JOB_PHASES]
    order.insert(order.index("execute"), "wire+dispatch")
    order += ["connect"] + [label for _, label in _SPAN_PHASES]
    breakdown = []
    for label in order:
        values = totals.get(label)
        if not values:
            continue
        total = sum(values)
        share: Any = ""
        if wall:
            spanned = intervals.get(label)
            # Union of reconstructed intervals when the events carry
            # timestamps; a sink without them falls back to the summed
            # total (historic behaviour, capped only by honesty).
            active = _union_seconds(spanned) if spanned else total
            share = round(active / wall * 100, 1)
        breakdown.append({
            "phase": label,
            "count": len(values),
            "total_s": round(total, 4),
            "mean_ms": round(total / len(values) * 1e3, 3),
            "share_%": share,
        })
    return breakdown


def worker_utilization(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-worker table from ``socket.worker``/``socket.connect``/
    ``socket.ping``/``job`` events: jobs completed, busy time,
    utilization, mean/peak pipeline window, mean ping RTT, plus the
    worker's own last wire-v6 metrics snapshot (executed-job count and
    exec rate measured on the worker's clock) when present."""
    jobs_by_worker: Dict[str, int] = defaultdict(int)
    for job in _events(rows, "job"):
        worker = (job.get("attrs") or {}).get("worker")
        if worker:
            jobs_by_worker[worker] += 1
    rtts: Dict[str, List[float]] = defaultdict(list)
    for name in ("socket.connect", "socket.ping"):
        for event in _events(rows, name):
            attrs = event.get("attrs") or {}
            if attrs.get("worker") and attrs.get("rtt_s") is not None:
                rtts[attrs["worker"]].append(float(attrs["rtt_s"]))
    table = []
    for event in _events(rows, "socket.worker"):
        attrs = event.get("attrs") or {}
        worker = attrs.get("worker", "?")
        samples = rtts.get(worker)
        done = attrs.get("w_done")
        up_s = float(attrs.get("w_up_s") or 0.0)
        table.append({
            "worker": worker,
            "jobs": jobs_by_worker.get(worker, 0),
            "busy_s": attrs.get("busy_s"),
            "util_%": round(float(attrs.get("utilization") or 0.0) * 100, 1),
            "mean_win": attrs.get("mean_window"),
            "peak_win": attrs.get("peak_window"),
            "rtt_ms": (round(sum(samples) / len(samples) * 1e3, 3)
                       if samples else ""),
            "w_done": done if done is not None else "",
            "exec/s": (round(float(done) / up_s, 1)
                       if done is not None and up_s > 0 else ""),
        })
    return sorted(table, key=lambda row: str(row["worker"]))


def coverage(rows: Sequence[Dict[str, Any]]) -> Optional[float]:
    """Fraction of the campaign wall clock the telemetry accounts for.

    Socket campaigns: mean over workers of ``(connect + sum(serialize +
    in-flight)) / wall`` -- phases that occupy the worker's driver thread
    end to end, so with one worker and ``window=1`` this approaches 1.0.
    Local campaigns: ``(execute + store phases) / wall``.  ``None``
    without a campaign span.
    """
    wall = campaign_wall(rows)
    if not wall:
        return None
    busy: Dict[str, float] = defaultdict(float)
    local_exec = 0.0
    for job in _events(rows, "job"):
        attrs = job.get("attrs") or {}
        worker = attrs.get("worker")
        if worker and attrs.get("inflight_s") is not None:
            busy[worker] += float(attrs.get("serialize_s") or 0.0)
            busy[worker] += float(attrs["inflight_s"])
        else:
            local_exec += float(attrs.get("exec_s") or 0.0)
    for connect in _events(rows, "socket.connect"):
        attrs = connect.get("attrs") or {}
        if attrs.get("worker") and attrs.get("dur_s") is not None:
            busy[attrs["worker"]] += float(attrs["dur_s"])
    if busy:
        return sum(min(total / wall, 1.0) for total in busy.values()) / len(busy)
    store_s = sum(
        float(span.get("dur") or 0.0)
        for name, _ in _SPAN_PHASES
        for span in _spans(rows, name)
    )
    return min((local_exec + store_s) / wall, 1.0)


def resilience_summary(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Recovery-action table over the backend's resilience events.

    One row per event kind that occurred -- ``{event, count, detail}``
    where detail compresses the most useful attribute(s): which workers
    died or rejoined, how many scenarios were requeued, which scenario
    was quarantined.  Empty for a campaign that never had to recover
    from anything.
    """
    table = []
    for name, label in _RESILIENCE_EVENTS:
        events = _events(rows, name)
        if not events:
            continue
        detail = ""
        if name in ("socket.worker_dead", "socket.reconnect"):
            workers = sorted({
                (event.get("attrs") or {}).get("worker", "?")
                for event in events
            })
            detail = ", ".join(workers)
        elif name == "socket.requeue":
            total = sum(
                int((event.get("attrs") or {}).get("count") or 0)
                for event in events
            )
            detail = f"{total} scenario(s)"
        elif name in ("socket.probe", "socket.quarantine"):
            keys = sorted({
                str((event.get("attrs") or {}).get("key", "?"))
                for event in events
            })
            detail = ", ".join(keys)
        elif name == "backend.degraded":
            remaining = sum(
                int((event.get("attrs") or {}).get("remaining") or 0)
                for event in events
            )
            detail = f"{remaining} scenario(s) finished locally"
        elif name == "socket.resend":
            workers = sorted({
                (event.get("attrs") or {}).get("worker", "?")
                for event in events
            })
            detail = ", ".join(workers)
        table.append({"event": label, "count": len(events), "detail": detail})
    return table


def wallclock_summary(rows: Sequence[Dict[str, Any]],
                      sink_bytes: Optional[int] = None) -> Dict[str, Any]:
    """The "where did the wall-clock go" numbers, as one flat dict.

    ``sink_bytes`` is the on-disk size of the telemetry sidecar itself
    (the sink grows unbounded on long campaigns, so its own weight is
    part of the story); ``None`` when the rows did not come from a file.
    """
    jobs = _events(rows, "job")
    exec_total = sum(
        float((job.get("attrs") or {}).get("exec_s") or 0.0) for job in jobs
    )
    # Overhead = every second a job spent in the pipeline but not
    # executing: serialize + (in flight - execute), i.e. wire framing,
    # worker-side queueing, and deserialization combined.
    overhead = 0.0
    for job in jobs:
        attrs = job.get("attrs") or {}
        inflight = attrs.get("inflight_s")
        if inflight is None:
            continue
        overhead += float(attrs.get("serialize_s") or 0.0)
        overhead += max(float(inflight) - float(attrs.get("exec_s") or 0.0),
                        0.0)
    stats_events = _events(rows, "campaign.stats")
    campaign_stats = (stats_events[-1].get("attrs") or {}) if stats_events else {}
    return {
        "wall_s": campaign_wall(rows),
        "jobs": len(jobs),
        "execute_s": round(exec_total, 4),
        "overhead_s": round(overhead, 4),
        "coverage": coverage(rows),
        "backend": campaign_stats.get("backend"),
        "executed": campaign_stats.get("executed"),
        "cached": campaign_stats.get("cached"),
        "failed": campaign_stats.get("failed"),
        "quarantined": campaign_stats.get("quarantined"),
        "sink_bytes": sink_bytes,
    }


def render_stats(rows: Sequence[Dict[str, Any]],
                 source: Optional[str] = None,
                 sink_bytes: Optional[int] = None) -> str:
    """The full ``repro stats`` text: header, phase table, worker table,
    execute-time sparkline, wall-clock summary."""
    from ..reporting.render import format_table, sparkline

    summary = wallclock_summary(rows, sink_bytes=sink_bytes)
    lines = []
    header = f"telemetry: {len(rows)} row(s)"
    if source:
        header += f" from {source}"
    if summary["backend"]:
        header += f" | backend {summary['backend']}"
    if summary["wall_s"] is not None:
        header += f" | campaign wall {summary['wall_s']:.3f}s"
    lines.append(header)

    breakdown = phase_breakdown(rows)
    if breakdown:
        lines.append("")
        lines.append(format_table(
            breakdown, ["phase", "count", "total_s", "mean_ms", "share_%"],
            title="phase breakdown",
        ))
        if any(row["phase"] == "queue wait*" for row in breakdown):
            lines.append("* queued jobs wait concurrently; total_s sums "
                         "that overlap (and can exceed the wall), share_% "
                         "collapses it to distinct wall-clock time")

    workers = worker_utilization(rows)
    if workers:
        columns = ["worker", "jobs", "busy_s", "util_%", "mean_win",
                   "peak_win", "rtt_ms"]
        if any(row["w_done"] != "" for row in workers):
            columns += ["w_done", "exec/s"]
        lines.append("")
        lines.append(format_table(
            workers, columns, title="worker utilization",
        ))

    resilience = resilience_summary(rows)
    if resilience:
        lines.append("")
        lines.append(format_table(
            resilience, ["event", "count", "detail"],
            title="resilience (recovery actions)",
        ))

    exec_ms = [
        float((job.get("attrs") or {}).get("exec_s") or 0.0) * 1e3
        for job in _events(rows, "job")
    ]
    if exec_ms:
        lines.append("")
        lines.append(f"execute ms over time: {sparkline(exec_ms)} "
                     f"(min {min(exec_ms):.2f}, max {max(exec_ms):.2f})")

    lines.append("")
    wall = summary["wall_s"]
    parts = [f"jobs {summary['jobs']}",
             f"execute {summary['execute_s']:.3f}s"]
    if summary["overhead_s"]:
        parts.append(f"dispatch+wire+queue overhead {summary['overhead_s']:.3f}s")
        if summary["execute_s"]:
            parts.append(
                "overhead/execute ratio "
                f"{summary['overhead_s'] / summary['execute_s']:.2f}x"
            )
    if wall:
        parts.append(f"wall {wall:.3f}s")
    if summary["coverage"] is not None:
        parts.append(f"telemetry accounts for {summary['coverage'] * 100:.1f}%"
                     " of wall time")
    if summary["quarantined"]:
        parts.append(f"quarantined {summary['quarantined']}")
    if summary["sink_bytes"] is not None:
        parts.append(f"sink bytes {summary['sink_bytes']}")
    lines.append("where did the wall-clock go: " + " | ".join(parts))
    return "\n".join(lines)


def main_stats(path: Union[str, Path]) -> int:
    """``python -m repro stats TELEMETRY``: render a sink file; exit 0."""
    import os
    import sys

    try:
        rows = load_telemetry(path)
    except FileNotFoundError:
        print(f"error: no such telemetry file: {path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_stats(rows, source=str(path),
                       sink_bytes=os.path.getsize(path)))
    return 0
