"""Structured stdlib-logging setup shared by driver, workers, and CLI.

One logger namespace (``repro.*``), one line format, one configuration
entry point.  Log lines are ``event key=value ...`` -- grep-friendly and
diffable, matching the telemetry sink's philosophy: every observable
fact is a flat record, not prose.  :func:`kv` builds the message part;
callers pick the logger and level::

    log = logging.getLogger("repro.worker")
    log.info(kv("accept", peer="127.0.0.1:52110", session=3))

:func:`configure_logging` installs a stderr handler on the ``repro``
logger exactly once (idempotent), so library imports never configure
logging behind an application's back -- only the CLI entry points call
it.  Propagation stays on, so test harnesses (``caplog``) and host
applications with root handlers still see everything.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional, TextIO

#: Accepted ``--log-level`` names, mapped to stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
_DATEFMT = "%H:%M:%S"
_HANDLER_FLAG = "_repro_obs_handler"


def kv(event: str, **fields: Any) -> str:
    """Format ``event key=value ...``; strings with spaces get quoted."""
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.6f}".rstrip("0").rstrip(".") or "0"
        else:
            text = str(value)
        if " " in text or text == "":
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def configure_logging(level: str = "info",
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger and set its level.

    Idempotent: a handler installed by a previous call is re-leveled, not
    duplicated.  ``stream`` defaults to ``sys.stderr`` so worker stdout
    stays reserved for its machine-parsed ``worker listening on ...``
    line.  Returns the configured logger.
    """
    try:
        resolved = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (choose from "
            f"{', '.join(sorted(LOG_LEVELS))})"
        ) from None
    logger = logging.getLogger("repro")
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_FLAG, False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    logger.setLevel(resolved)
    handler.setLevel(resolved)
    return logger
