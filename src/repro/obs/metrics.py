"""Metrics registry: process-global counters, gauges, and histograms.

The second observability layer.  Spans (:mod:`repro.obs.spans`) answer
*where the time went* after a campaign finishes; metrics answer *what is
happening right now* while it runs: completed/cached/failed counts, store
append bytes, socket pipeline occupancy, cache hit rates.  The live
progress reporter (:mod:`repro.obs.live`) and the trend recorder
(:mod:`repro.obs.trend`) are both built on :meth:`MetricsRegistry.snapshot`.

Design constraints mirror the span layer:

* **near-zero overhead when disabled** -- the common case.  The
  module-level :func:`inc` / :func:`set_gauge` / :func:`observe` helpers
  return after one attribute check against the process-global registry,
  and :meth:`MetricsRegistry.counter` & friends hand out one shared
  no-op metric (:data:`NULL_METRIC`) while disabled, so the disabled
  path allocates nothing (identity- and allocation-tested like
  ``NULL_SPAN``);
* **thread-safe** -- all mutation happens under one registry lock (the
  socket driver updates from per-worker threads);
* **O(1) per sample** -- histograms are fixed-bucket: one bisect and
  three integer adds per observation, never a stored sample list, in
  the spirit of the sublinear streaming estimators the ROADMAP's trend
  dashboards will sit on.

Activation follows the :mod:`logging` model (one process-global current
registry, disabled by default), exactly like ``spans.activate``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Dict, Optional, Sequence, Tuple

from ..analysis.watchdog import traced_lock

#: Version stamp carried by :meth:`MetricsRegistry.snapshot` output, so
#: downstream consumers (live view, trend records) can refuse layouts
#: from the future.  Independent of the telemetry row schema.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds, in seconds -- sized for the
#: durations this runtime actually sees (sub-ms lock waits up to
#: multi-second batch round trips).  The last bucket is implicit +inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class _NullMetric:
    """The shared no-op metric handed out while metrics are disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The one disabled-path metric instance; identity-tested by the
#: zero-allocation tests (mirrors ``NULL_SPAN``).
NULL_METRIC = _NullMetric()


class Counter:
    """A monotonically increasing count (events, bytes, rows)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Any) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (inflight jobs, window size)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Any) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket distribution summary: O(1) memory, O(log B) insert.

    ``buckets`` are upper bounds; a final implicit +inf bucket catches
    the tail.  No samples are retained -- only per-bucket counts, the
    running sum, and the count, so a million observations cost the same
    as ten.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, lock: Any,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect_right(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A named family of counters, gauges, and histograms.

    Args:
        enabled: a disabled registry records nothing and hands out the
            shared :data:`NULL_METRIC`; :data:`DISABLED_REGISTRY` is the
            canonical disabled instance.

    Metric objects are created lazily on first use and live for the
    registry's lifetime; :meth:`snapshot` serializes the whole family
    into one plain dict (sorted keys, JSON-ready).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        # Watchdog-instrumented: this lock nests *inside* the store
        # writer lock (runner holds the lockfile while instrumentation
        # fires) and must never be held *around* it.
        self._lock = traced_lock("MetricsRegistry._lock")
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric handles ------------------------------------------------

    def counter(self, name: str) -> Any:
        if not self.enabled:
            return NULL_METRIC
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._lock)
        return metric

    def gauge(self, name: str) -> Any:
        if not self.enabled:
            return NULL_METRIC
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._lock)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Any:
        if not self.enabled:
            return NULL_METRIC
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, self._lock, buckets
                )
        return metric

    # -- one-shot conveniences (the instrumentation-site API) ----------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- serialization -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as one JSON-ready dict (sorted keys).

        Layout (``schema`` = :data:`METRICS_SCHEMA_VERSION`)::

            {"schema": 1,
             "counters": {name: value, ...},
             "gauges": {name: value, ...},
             "histograms": {name: {"buckets": [...], "counts": [...],
                                   "sum": s, "count": n, "mean": m}, ...}}
        """
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            histograms = {
                name: {
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                    "sum": round(hist.sum, 6),
                    "count": hist.count,
                    "mean": round(hist.mean, 6),
                }
                for name, hist in sorted(self._histograms.items())
            }
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def value(self, name: str, default: float = 0) -> float:
        """The current value of a counter or gauge (0 when absent)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
        return default

    def reset(self) -> None:
        """Drop every metric (tests; per-campaign reuse)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        with self._lock:
            sizes = (len(self._counters), len(self._gauges),
                     len(self._histograms))
        return (f"<MetricsRegistry {state} counters={sizes[0]} "
                f"gauges={sizes[1]} histograms={sizes[2]}>")


#: The always-off registry every process starts with.
DISABLED_REGISTRY = MetricsRegistry(enabled=False)

_current: MetricsRegistry = DISABLED_REGISTRY
_current_lock = threading.Lock()


def current() -> MetricsRegistry:
    """The process-global active registry (disabled by default)."""
    return _current


class _Activation:
    """Context manager restoring the previously active registry."""

    __slots__ = ("registry", "_previous")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _current
        with _current_lock:
            self._previous = _current
            _current = self.registry
        return self.registry

    def __exit__(self, *exc_info: Any) -> None:
        global _current
        with _current_lock:
            _current = self._previous or DISABLED_REGISTRY


def activate(registry: MetricsRegistry) -> _Activation:
    """Make ``registry`` the process-global current registry for the
    duration of a ``with`` block (the previous one restored on exit).

    Process-global by design, exactly like ``spans.activate``:
    instrumentation points (store appends, runner accounting, the socket
    driver's per-worker threads) call the module-level helpers instead of
    threading a registry through every signature.
    """
    return _Activation(registry)


def inc(name: str, amount: float = 1) -> None:
    """Increment a counter on the current registry (no-op when off)."""
    registry = _current
    if registry.enabled:
        registry.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the current registry (no-op when off)."""
    registry = _current
    if registry.enabled:
        registry.set_gauge(name, value)


def inc_gauge(name: str, amount: float = 1) -> None:
    """Move a gauge up or down on the current registry (no-op when off).

    For level-style gauges (jobs in flight) maintained from several
    threads, where ``set`` would race: ``inc`` composes under the
    registry lock."""
    registry = _current
    if registry.enabled:
        registry.gauge(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the current registry (no-op off)."""
    registry = _current
    if registry.enabled:
        registry.observe(name, value)


def snapshot() -> Dict[str, Any]:
    """The current registry's :meth:`MetricsRegistry.snapshot`."""
    return _current.snapshot()
