"""Classification predictions: representation, accounting, generators."""

from .generators import (
    GENERATORS,
    corrupt_concentrated,
    corrupt_random,
    corrupt_single_holder,
    generate,
    misclassification_cost,
    perfect_predictions,
)
from .model import (
    ErrorCounts,
    Prediction,
    PredictionAssignment,
    correct_prediction,
    count_errors,
    from_suspect_sets,
    validate_assignment,
)

__all__ = [
    "ErrorCounts",
    "GENERATORS",
    "Prediction",
    "PredictionAssignment",
    "correct_prediction",
    "corrupt_concentrated",
    "corrupt_random",
    "corrupt_single_holder",
    "count_errors",
    "from_suspect_sets",
    "generate",
    "misclassification_cost",
    "perfect_predictions",
    "validate_assignment",
]
