"""Synthetic prediction generators with exact error budgets.

The paper's theorems are parameterized solely by ``B``, the number of
incorrect prediction bits held by honest processes.  These generators stand
in for the paper's hypothetical AI security monitor: each produces an
assignment whose error count is *exactly* the requested budget, arranged in
different patterns:

* :func:`perfect_predictions` -- ``B = 0``.
* :func:`corrupt_random` -- ``B`` flips scattered uniformly (a noisy but
  unbiased monitor).
* :func:`corrupt_concentrated` -- flips packed to misclassify as many
  processes as possible (a monitor defeated on specific targets; the
  worst case driving Lemma 1's bound).
* :func:`corrupt_single_holder` -- all flips inside few holders' strings (a
  few subverted monitor endpoints; classification voting shrugs this off).
* :func:`corrupt_hiding` -- the Theorem 13 proof's construction: flips
  spent hiding faulty processes behind honest-looking predictions (the
  adversarial monitor driving the round lower bound).

All randomness flows through an injected ``random.Random`` for determinism.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Set

from .model import PredictionAssignment, correct_prediction


def perfect_predictions(n: int, honest_ids: Iterable[int]) -> PredictionAssignment:
    """Every process receives the ground-truth classification."""
    truth = correct_prediction(n, honest_ids)
    return [truth for _ in range(n)]


def _flip(assignment: PredictionAssignment, holder: int, subject: int) -> None:
    row = list(assignment[holder])
    row[subject] = 1 - row[subject]
    assignment[holder] = tuple(row)


def corrupt_random(
    n: int,
    honest_ids: Iterable[int],
    budget: int,
    rng: random.Random,
) -> PredictionAssignment:
    """Exactly ``budget`` uniformly random wrong bits in honest strings."""
    honest = sorted(set(honest_ids))
    capacity = len(honest) * n
    if budget > capacity:
        raise ValueError(f"budget {budget} exceeds capacity {capacity}")
    assignment = perfect_predictions(n, honest)
    cells = [(i, j) for i in honest for j in range(n)]
    for holder, subject in rng.sample(cells, budget):
        _flip(assignment, holder, subject)
    return assignment


def misclassification_cost(n: int, f: int, subject_is_honest: bool) -> int:
    """Min wrong bits to make one process *possibly* misclassified.

    With perfect remaining predictions and faulty voters colluding: an
    honest subject needs its honest supporting votes pushed below
    ``ceil((n+1)/2)`` (Observation 2), a faulty subject needs honest votes
    *for* it raised to ``ceil((n+1)/2) - f`` (Observation 1).
    """
    majority = (n + 1 + 1) // 2  # ceil((n+1)/2)
    n_honest = n - f
    if subject_is_honest:
        return max(0, n_honest - majority + 1)
    return max(0, majority - f)


def corrupt_concentrated(
    n: int,
    honest_ids: Iterable[int],
    budget: int,
    rng: random.Random,
) -> PredictionAssignment:
    """Pack ``budget`` wrong bits to maximize misclassified processes.

    Greedily selects victim subjects (cheapest first) and flips exactly the
    bits needed to let a colluding classification-time adversary flip the
    vote on each victim; leftover budget is spent on scattered flips that
    cannot create further misclassifications.
    """
    honest = sorted(set(honest_ids))
    honest_set: Set[int] = set(honest)
    faulty = [j for j in range(n) if j not in honest_set]
    f = len(faulty)
    capacity = len(honest) * n
    if budget > capacity:
        raise ValueError(f"budget {budget} exceeds capacity {capacity}")
    assignment = perfect_predictions(n, honest)
    remaining = budget
    flipped: Set[tuple] = set()

    victims: List[tuple] = [(misclassification_cost(n, f, False), j) for j in faulty]
    victims += [(misclassification_cost(n, f, True), j) for j in honest]
    victims.sort()
    for cost, subject in victims:
        if cost <= 0 or cost > remaining:
            continue
        holders = [i for i in honest if i != subject][:cost]
        if len(holders) < cost:
            continue
        for holder in holders:
            _flip(assignment, holder, subject)
            flipped.add((holder, subject))
        remaining -= cost
    if remaining:
        cells = [
            (i, j) for i in honest for j in range(n) if (i, j) not in flipped
        ]
        for holder, subject in rng.sample(cells, remaining):
            _flip(assignment, holder, subject)
    return assignment


def corrupt_single_holder(
    n: int,
    honest_ids: Iterable[int],
    budget: int,
    rng: random.Random,
) -> PredictionAssignment:
    """Concentrate all wrong bits in as few honest holders as possible.

    Models a handful of fully subverted monitor endpoints.  Majority voting
    in the classifier makes these flips harmless unless roughly ``n/2``
    holders are subverted -- a useful contrast scenario for benchmarks.
    """
    honest = sorted(set(honest_ids))
    capacity = len(honest) * n
    if budget > capacity:
        raise ValueError(f"budget {budget} exceeds capacity {capacity}")
    assignment = perfect_predictions(n, honest)
    remaining = budget
    for holder in honest:
        take = min(remaining, n)
        subjects = rng.sample(range(n), take) if take < n else list(range(n))
        for subject in subjects:
            _flip(assignment, holder, subject)
        remaining -= take
        if remaining == 0:
            break
    return assignment


def corrupt_hiding(
    n: int,
    honest_ids: Iterable[int],
    budget: int,
    rng: random.Random,
) -> PredictionAssignment:
    """The Theorem 13 hiding construction as a budgeted generator.

    Spends the budget hiding faulty processes from every honest holder:
    fully hiding one fault costs ``n - f`` wrong bits (one per honest
    holder), so a budget of ``k * (n - f)`` hides the ``k`` lowest faulty
    ids exactly as :func:`repro.lowerbounds.hiding_predictions` does.
    Leftover budget partially hides the next faulty id (lowest holders
    first); any remainder once every fault is hidden is spent on false
    alarms.  The assignment carries exactly ``budget`` wrong bits, which
    makes the lower-bound workload a cacheable scenario like any other.
    """
    honest = sorted(set(honest_ids))
    honest_set: Set[int] = set(honest)
    faulty = [j for j in range(n) if j not in honest_set]
    capacity = len(honest) * n
    if not 0 <= budget <= capacity:
        raise ValueError(f"budget {budget} outside 0..{capacity}")
    assignment = perfect_predictions(n, honest)
    remaining = budget
    for subject in faulty:
        if remaining == 0:
            break
        for holder in honest[: min(len(honest), remaining)]:
            _flip(assignment, holder, subject)
        remaining -= min(len(honest), remaining)
    if remaining:
        cells = [(i, j) for i in honest for j in honest]
        for holder, subject in cells[:remaining]:
            _flip(assignment, holder, subject)
    return assignment


GENERATORS = {
    "random": corrupt_random,
    "concentrated": corrupt_concentrated,
    "single_holder": corrupt_single_holder,
    "hiding": corrupt_hiding,
}


def generate(
    kind: str,
    n: int,
    honest_ids: Iterable[int],
    budget: int,
    rng: random.Random,
) -> PredictionAssignment:
    """Dispatch by generator name (see :data:`GENERATORS`)."""
    if budget == 0:
        return perfect_predictions(n, honest_ids)
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise ValueError(f"unknown generator kind {kind!r}") from None
    return generator(n, honest_ids, budget, rng)
