"""Classification predictions and their error accounting (Section 3).

Each process ``p_i`` receives an ``n``-bit string ``a_i`` where
``a_i[j] = 1`` predicts that ``p_j`` is honest and ``a_i[j] = 0`` predicts
that it is faulty.  For a given execution with honest set ``H``:

* ``B_F`` counts bits, held by honest processes, that predict a faulty
  process as honest (missed detections);
* ``B_H`` counts bits, held by honest processes, that predict an honest
  process as faulty (false alarms);
* ``B = B_F + B_H`` is the total prediction error.  Bits held by faulty
  processes are *not* counted.

Predictions are represented as tuples of 0/1 ints; a full assignment is a
list of ``n`` such tuples indexed by process id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

Prediction = Tuple[int, ...]
PredictionAssignment = List[Prediction]


@dataclass(frozen=True)
class ErrorCounts:
    """Breakdown of incorrect prediction bits held by honest processes."""

    missed_faulty: int  # B_F: faulty predicted honest
    false_alarms: int  # B_H: honest predicted faulty

    @property
    def total(self) -> int:
        """B, the paper's prediction-quality parameter."""
        return self.missed_faulty + self.false_alarms


def correct_prediction(n: int, honest_ids: Iterable[int]) -> Prediction:
    """The ground-truth classification vector (the paper's ``c-hat``)."""
    honest = set(honest_ids)
    return tuple(1 if j in honest else 0 for j in range(n))


def count_errors(
    assignment: Sequence[Prediction], honest_ids: Iterable[int]
) -> ErrorCounts:
    """Count ``B_F`` and ``B_H`` over the honest processes' strings."""
    honest: Set[int] = set(honest_ids)
    n = len(assignment)
    missed = 0
    alarms = 0
    for i in honest:
        a_i = assignment[i]
        for j in range(n):
            if j in honest and a_i[j] == 0:
                alarms += 1
            elif j not in honest and a_i[j] == 1:
                missed += 1
    return ErrorCounts(missed_faulty=missed, false_alarms=alarms)


def validate_assignment(assignment: Sequence[Prediction], n: int) -> None:
    """Raise ``ValueError`` unless ``assignment`` is n strings of n bits."""
    if len(assignment) != n:
        raise ValueError(f"expected {n} prediction strings, got {len(assignment)}")
    for i, a_i in enumerate(assignment):
        if len(a_i) != n:
            raise ValueError(f"prediction string {i} has length {len(a_i)} != {n}")
        if any(bit not in (0, 1) for bit in a_i):
            raise ValueError(f"prediction string {i} contains non-binary entries")


def from_suspect_sets(
    n: int, suspects_by_pid: Sequence[Iterable[int]]
) -> PredictionAssignment:
    """Build predictions from per-process suspect lists.

    This mirrors the paper's motivating interface: a security monitor hands
    each process a list of processes that look malicious, everyone else
    defaulting to honest.
    """
    assignment = []
    for pid in range(n):
        suspects = set(suspects_by_pid[pid])
        assignment.append(tuple(0 if j in suspects else 1 for j in range(n)))
    return assignment
