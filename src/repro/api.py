"""v1 public API: one composable, versioned front door.

Every way of running this reproduction -- a single execution, a scenario
campaign over any backend, a rendered report -- is one
:class:`Experiment` away::

    from repro.api import Experiment

    exp = (Experiment(mode="authenticated", n=9, t=2)
           .with_adversary("mutating")
           .with_predictions("hiding", B=3)
           .grid(n=[10, 20, 40]))

    grid = exp.compile()                  # -> ScenarioGrid (declarative)
    one = exp.with_seeds([0]).solve_one() # -> SolveReport (single run)
    campaign = exp.run(store="out.jsonl") # -> Campaign (rows + stats)
    report = exp.report(spec)             # -> Report (tables + claims)

An ``Experiment`` is an immutable description: every ``with_*``/``grid``
call returns a new instance, so partial experiments can be shared and
specialized.  Its single compile target is the
:class:`~repro.runtime.scenario.ScenarioGrid` /
:class:`~repro.runtime.scenario.ScenarioSpec` layer -- the content-hashed
identity that the result store, the wire protocol, and the reports all
key on -- which is what makes an experiment the thing you can hash,
shard, cache, diff, and render.

Two ingredient styles coexist:

* **declarative** (names and budgets: ``with_adversary("stalling")``,
  ``with_predictions("hiding", B=3)``) -- serializable, hashable,
  grid-able; execution randomness derives from each scenario's content
  hash, so results are independent of where and when they run;
* **object overrides** (an :class:`~repro.net.adversary.Adversary`
  instance, an explicit prediction assignment, a pinned ``key_seed``) --
  for one-off runs and interop with hand-built components.  These cannot
  be compiled to a grid; :meth:`Experiment.solve_one` and
  :meth:`Experiment.baseline` accept them, :meth:`Experiment.compile` /
  :meth:`Experiment.run` refuse them loudly.

Versioning: :data:`API_VERSION` tracks this surface (snapshot-tested in
``tests/golden/api_surface.txt``); :data:`SCHEMA_VERSION` stamps every
result row (the ``schema`` column) so stores and wire peers can detect
incompatible layouts.  The pre-v1 entry points (``repro.solve``,
``repro.solve_without_predictions``, ``run_scenario``) are deprecation
shims over this module -- see docs/API.md for the migration table.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .adversary.registry import adversary_spec, make_adversary
from .core.api import SolveReport, _solve, _solve_baseline
from .core.wrapper import AUTHENTICATED, MODES, UNAUTHENTICATED
from .net.adversary import Adversary
from .obs import Telemetry, configure_logging
from .predictions.generators import GENERATORS, generate
from .reporting.render import write_report
from .reporting.spec import Report, ReportSpec, TableSpec, build_report
from .runtime.aggregate import check_envelopes, summarize
from .runtime.backends import Backend, make_backend
from .runtime.execute import SCHEMA_VERSION, solve_spec
from .runtime.runner import CampaignResult, CampaignRunner, CampaignStats
from .runtime.scenario import (
    INPUT_PATTERNS,
    ScenarioGrid,
    ScenarioSpec,
    _axis,
    default_t,
    pattern_inputs,
)
from .runtime.store import ResultStore

#: Version of the public surface in this module.  Bump on any breaking
#: signature change; the API snapshot test pins the current surface.
API_VERSION = 1

_SEED_SPACE = 2**30

#: Axis-bearing experiment fields, in ScenarioGrid declaration order.
_AXIS_FIELDS = (
    "n", "t", "f", "budget", "mode", "adversary", "generator", "pattern",
    "seed",
)

#: Default row columns for auto-generated single-table reports.
_DEFAULT_COLUMNS = [
    "n", "t", "f", "B", "mode", "adversary", "agreed", "rounds",
    "messages", "lb_rounds",
]


class Experiment:
    """An immutable, composable description of agreement experiments.

    Constructor arguments mirror :class:`ScenarioSpec`/:class:`ScenarioGrid`
    fields; every axis argument accepts a scalar or an iterable of
    values (``Experiment(n=[10, 20, 40])`` is a three-point grid).
    ``t``/``f`` entries of ``None`` derive the conventional values
    (``max(1, (n-1)//3)`` and ``t`` -- or the explicit fault-set size --
    respectively).  See the module docstring for the lifecycle.
    """

    def __init__(
        self,
        n: Any = 7,
        t: Any = None,
        f: Any = None,
        *,
        budget: Any = 0,
        mode: Any = UNAUTHENTICATED,
        adversary: Any = "silent",
        generator: Any = "concentrated",
        pattern: Any = "split",
        seed: Any = 0,
        arms: Sequence[str] = ("early", "class"),
        faulty: Optional[Iterable[int]] = None,
        inputs: Optional[Sequence[Any]] = None,
        skip_invalid: bool = False,
    ) -> None:
        self._axes: Dict[str, Tuple[Any, ...]] = {
            "n": _axis(n),
            "t": _axis(t),
            "f": _axis(f),
            "budget": _axis(budget),
            "mode": _axis(mode),
            "adversary": _axis(adversary),
            "generator": _axis(generator),
            "pattern": _axis(pattern),
            # A scalar seed is one literal seed value (ScenarioSpec
            # semantics); use with_seeds(count) for range expansion.
            "seed": _axis(seed),
        }
        self._arms: Tuple[str, ...] = tuple(arms)
        self._faulty: Optional[Tuple[int, ...]] = (
            tuple(faulty) if faulty is not None else None
        )
        self._inputs: Optional[Tuple[Any, ...]] = (
            tuple(inputs) if inputs is not None else None
        )
        self._skip_invalid = bool(skip_invalid)
        # Explicit scenario list (from_specs); bypasses the axis product.
        self._specs: Optional[Tuple[ScenarioSpec, ...]] = None
        # Object-level overrides and execution options (solve_one only).
        self._adversary_obj: Optional[Adversary] = None
        self._predictions_obj: Optional[Any] = None
        self._key_seed: Optional[int] = None
        self._max_rounds: Optional[int] = None
        self._cache: bool = True
        self._validate_categoricals()

    # -- construction helpers ------------------------------------------

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Experiment":
        """An experiment describing exactly one existing scenario."""
        return cls.from_specs([spec])

    @classmethod
    def from_specs(cls, specs: Iterable[ScenarioSpec]) -> "Experiment":
        """An experiment over an explicit scenario list.

        For scenario sets no cartesian grid expresses (coupled axes,
        Monte-Carlo samples).  ``scenarios()``/``run()``/``report()``
        work as usual; :meth:`compile` raises, because there is no grid
        form to compile to.
        """
        experiment = cls()
        experiment._specs = tuple(spec.validate() for spec in specs)
        return experiment

    def _clone(self, **updates: Any) -> "Experiment":
        """Copy-with-updates; the engine of every fluent method."""
        twin = Experiment.__new__(Experiment)
        twin._axes = dict(self._axes)
        twin._arms = self._arms
        twin._faulty = self._faulty
        twin._inputs = self._inputs
        twin._skip_invalid = self._skip_invalid
        twin._specs = self._specs
        twin._adversary_obj = self._adversary_obj
        twin._predictions_obj = self._predictions_obj
        twin._key_seed = self._key_seed
        twin._max_rounds = self._max_rounds
        twin._cache = self._cache
        for name, value in updates.items():
            setattr(twin, name, value)
        twin._validate_categoricals()
        return twin

    def _validate_categoricals(self) -> None:
        """Eager validation: a typo'd name fails at build time, not after
        half a campaign has executed."""
        for mode in self._axes["mode"]:
            if mode not in MODES:
                raise ValueError(
                    f"unknown mode {mode!r} (known modes: {', '.join(MODES)})"
                )
        for adversary in self._axes["adversary"]:
            adversary_spec(adversary)  # raises on unknown kinds
        for generator in self._axes["generator"]:
            if generator not in GENERATORS:
                raise ValueError(f"unknown generator kind {generator!r}")
        if self._inputs is None:
            for pattern in self._axes["pattern"]:
                if pattern not in INPUT_PATTERNS:
                    raise ValueError(f"unknown input pattern {pattern!r}")

    # -- fluent builders -----------------------------------------------

    def grid(self, **axes: Any) -> "Experiment":
        """Replace any axis with a value list (``grid(n=[10, 20, 40])``).

        Accepts every axis field (``n``/``t``/``f``/``budget``/``mode``/
        ``adversary``/``generator``/``pattern``/``seed``); ``seeds`` is
        an alias of ``seed`` accepting an int count (expanded to
        ``range(count)``).
        """
        self._require_axes("grid()")
        updates = dict(self._axes)
        for name, value in axes.items():
            if name == "seeds":
                name, value = "seed", (
                    tuple(range(value)) if isinstance(value, int) else value
                )
            if name not in _AXIS_FIELDS:
                raise ValueError(
                    f"unknown grid axis {name!r} "
                    f"(known: {', '.join(_AXIS_FIELDS)}, seeds)"
                )
            updates[name] = _axis(value)
        return self._clone(_axes=updates)

    def with_mode(self, mode: Any) -> "Experiment":
        """Set the protocol mode (or mode axis)."""
        return self.grid(mode=mode)

    def with_adversary(
        self, adversary: Union[str, Adversary, Sequence[str]]
    ) -> "Experiment":
        """Set the adversary by registry name (or name axis), or -- for
        single executions only -- an :class:`Adversary` instance."""
        if isinstance(adversary, Adversary):
            self._require_axes("adversary object overrides")
            return self._clone(_adversary_obj=adversary)
        # Last call wins: a declarative name replaces any earlier object
        # override instead of being silently shadowed by it.
        return self.grid(adversary=adversary)._clone(_adversary_obj=None)

    def with_predictions(
        self, predictions: Any, B: Optional[Any] = None
    ) -> "Experiment":
        """Set the prediction workload.

        ``with_predictions("hiding", B=3)`` declares a generator name
        plus error budget (both may be axes); ``with_predictions(
        assignment)`` pins an explicit prediction assignment for single
        executions.
        """
        if isinstance(predictions, str):
            experiment = self.grid(generator=predictions)
            if B is not None:
                experiment = experiment.grid(budget=B)
            # Last call wins over any earlier explicit assignment.
            return experiment._clone(_predictions_obj=None)
        if B is not None:
            raise ValueError(
                "B= only applies to generator names, not explicit "
                "prediction assignments"
            )
        self._require_axes("prediction object overrides")
        return self._clone(_predictions_obj=predictions)

    def with_budget(self, B: Any) -> "Experiment":
        """Set the prediction error budget ``B`` (or budget axis)."""
        return self.grid(budget=B)

    def with_faults(
        self,
        f: Any = None,
        faulty: Optional[Iterable[int]] = None,
    ) -> "Experiment":
        """Set the fault count axis and/or an explicit fault set.

        With only ``faulty`` given, ``f`` derives the set's size.
        """
        self._require_axes("with_faults()")
        experiment = self
        if faulty is not None:
            experiment = experiment._clone(_faulty=tuple(faulty))
            if f is None:
                f = len(set(experiment._faulty))
        if f is not None:
            experiment = experiment.grid(f=f)
        return experiment

    def with_inputs(self, inputs: Sequence[Any]) -> "Experiment":
        """Pin the exact proposal vector (overrides ``pattern``)."""
        self._require_axes("with_inputs()")
        return self._clone(_inputs=tuple(inputs))

    def with_pattern(self, pattern: Any) -> "Experiment":
        """Set the input pattern (or pattern axis); see
        :data:`~repro.runtime.scenario.INPUT_PATTERNS`."""
        return self.grid(pattern=pattern)

    def with_arms(self, *arms: str) -> "Experiment":
        """Set the wrapper arms raced inside each phase."""
        self._require_axes("with_arms()")
        return self._clone(_arms=tuple(arms))

    def with_seeds(self, seeds: Any) -> "Experiment":
        """Set the seed axis: an int expands to ``range(seeds)``."""
        return self.grid(seeds=seeds)

    def with_options(
        self,
        *,
        key_seed: Optional[int] = None,
        max_rounds: Optional[int] = None,
        cache: Optional[bool] = None,
    ) -> "Experiment":
        """Set single-execution engine options (:meth:`solve_one` /
        :meth:`baseline` only).

        ``key_seed`` pins the simulated-PKI key material explicitly --
        setting it (even to 0) switches :meth:`solve_one` from the
        scenario-derived randomness convention to the explicit pre-v1
        convention.  ``max_rounds`` caps the engine; ``cache`` toggles
        the authenticated-mode verification caches (results are
        identical either way).
        """
        if key_seed is not None:
            self._require_axes("key_seed overrides")
        updates: Dict[str, Any] = {}
        if key_seed is not None:
            updates["_key_seed"] = key_seed
        if max_rounds is not None:
            updates["_max_rounds"] = max_rounds
        if cache is not None:
            updates["_cache"] = cache
        return self._clone(**updates)

    def skip_invalid(self, skip: bool = True) -> "Experiment":
        """Drop numerically infeasible grid combinations instead of
        raising (typo'd categorical values still raise)."""
        return self._clone(_skip_invalid=bool(skip))

    # -- compilation ---------------------------------------------------

    def compile(self) -> ScenarioGrid:
        """Compile to the single declarative target: a
        :class:`ScenarioGrid` whose expansion is this experiment's
        scenario list.  Raises for experiments that have no grid form
        (explicit spec lists, object overrides, engine options)."""
        self._require_declarative("compile()")
        if self._specs is not None:
            raise ValueError(
                "explicit scenario lists have no grid form; use scenarios()"
            )
        return self._grid()

    def _grid(self) -> ScenarioGrid:
        """The grid form of the axis state, unchecked (scenario identity
        ignores solve_one-only engine options, so :meth:`spec` may
        compile while they are set; the public :meth:`compile` and the
        campaign entries go through :meth:`_require_declarative`)."""
        return ScenarioGrid(
            n=self._axes["n"],
            t=self._axes["t"],
            f=self._axes["f"],
            budget=self._axes["budget"],
            mode=self._axes["mode"],
            adversary=self._axes["adversary"],
            generator=self._axes["generator"],
            pattern=self._axes["pattern"],
            seeds=self._axes["seed"],
            arms=self._arms,
            faulty=self._faulty,
            inputs=self._inputs,
            skip_invalid=self._skip_invalid,
        )

    def scenarios(self) -> List[ScenarioSpec]:
        """Every concrete scenario this experiment describes, in
        deterministic order."""
        if self._specs is not None:
            return list(self._specs)
        self._require_no_objects("scenarios()")
        return self._grid().expand()

    def spec(self) -> ScenarioSpec:
        """The single scenario of a one-point experiment (raises if the
        experiment describes zero or several)."""
        specs = self.scenarios()
        if len(specs) != 1:
            raise ValueError(
                f"experiment describes {len(specs)} scenarios, not 1; "
                "pin every axis (and the seed) before spec()/solve_one()"
            )
        return specs[0]

    def size(self) -> int:
        """Number of scenarios described (after ``skip_invalid``)."""
        return len(self.scenarios())

    # -- execution -----------------------------------------------------

    def solve_one(self) -> SolveReport:
        """Run one execution end to end; return its :class:`SolveReport`.

        Fully declarative experiments run the exact scenario row path
        (identical randomness and results to :meth:`run`); experiments
        carrying object overrides (an adversary/prediction instance, an
        explicit ``key_seed``) run the engine directly with those
        objects, reproducing the pre-v1 ``repro.solve`` semantics.
        """
        if not self._has_overrides():
            return solve_spec(
                self.spec(), cache=self._cache, max_rounds=self._max_rounds
            )
        n, t = self._single("n"), self._single("t")
        if t is None:
            t = default_t(n)
        inputs, faulty, kwargs = self._override_ingredients(n, t)
        return _solve(
            n,
            t,
            inputs,
            faulty_ids=faulty,
            mode=self._single("mode"),
            arms=self._arms,
            key_seed=self._key_seed or 0,
            max_rounds=self._max_rounds,
            cache=self._cache,
            **kwargs,
        )

    def baseline(self) -> SolveReport:
        """Run the prediction-free early-stopping baseline on this
        experiment's workload (what a system without a security monitor
        deploys; ``O(f)`` rounds always)."""
        self._require_axes("baseline()")
        n, t = self._single("n"), self._single("t")
        if t is None:
            t = default_t(n)
        inputs, faulty, kwargs = self._override_ingredients(n, t)
        kwargs.pop("predictions", None)
        return _solve_baseline(
            n,
            t,
            inputs,
            faulty_ids=faulty,
            max_rounds=(
                self._max_rounds if self._max_rounds is not None else 100_000
            ),
            **kwargs,
        )

    def run(
        self,
        *,
        store: Optional[Union[str, ResultStore]] = None,
        workers: int = 1,
        backend: Optional[Union[str, Backend]] = None,
        connect: Sequence[str] = (),
        job_timeout: float = 300.0,
        require_all: bool = False,
        connect_retries: int = 2,
        backoff: float = 0.5,
        batch: int = 1,
        adaptive_window: bool = False,
        chunk_size: Optional[int] = None,
        mp_context: str = "fork",
        lock: bool = True,
        telemetry: Optional[Union[str, Telemetry]] = None,
        live: bool = False,
        trend: Optional[str] = None,
        log_level: Optional[str] = None,
    ) -> "Campaign":
        """Execute every scenario (cached rows served from ``store``).

        Args:
            store: result store path or instance; completed scenarios
                are served from it and fresh rows persisted to it.
            workers: local pool size when no explicit backend is given.
            backend: a :class:`Backend` instance, a backend name
                (``"serial"``/``"pool"``/``"socket"``/``"auto"``), or
                ``None`` for the workers-based default.  Name-built
                backends are closed after the run; instances are the
                caller's to close.
            connect: socket-backend worker endpoints (implies socket).
            job_timeout: socket heartbeat/requeue timeout in seconds.
            require_all: fail fast unless every ``connect`` endpoint is
                reachable (socket backend; default tolerates a partial
                fleet).
            connect_retries: extra connect rounds for unreachable socket
                workers, with exponential backoff from ``backoff``.
            backoff: base backoff seconds for socket connect retries and
                mid-campaign reconnects.
            batch: scenarios packed into each socket wire frame (1 =
                unbatched); amortizes per-job dispatch/wire overhead.
            adaptive_window: let each socket link's pipeline window
                self-tune -- widen while its worker reports near-zero
                queue wait, shrink under heartbeat pressure.
            chunk_size / mp_context: pool-backend tuning.
            lock: hold the store's exclusive writer lockfile while
                executing (see :class:`CampaignRunner`).
            telemetry: observability sidecar -- a JSONL sink path
                (render it with ``python -m repro stats PATH``) or a
                :class:`~repro.obs.Telemetry` instance.  Phase timings
                and worker utilization are recorded alongside the run;
                result rows are byte-identical with telemetry on or off.
            live: render a live progress line (throughput, ETA,
                per-worker state) to stderr while the campaign runs;
                rows stay byte-identical with the live view on or off.
            trend: append one run-summary record to this trend-history
                JSONL after the run (render with ``python -m repro
                trend PATH``; gate CI with ``--check``).
            log_level: configure the ``repro`` logging tree at this
                level (``debug``/``info``/...) before running, exactly
                like the CLI ``--log-level`` flags.

        Returns:
            A :class:`Campaign` with rows in scenario order.
        """
        self._require_declarative("run()")
        if log_level is not None:
            configure_logging(log_level)
        if isinstance(store, str) or hasattr(store, "__fspath__"):
            store = ResultStore(store)
        resolved, owned = self._resolve_backend(
            backend, workers=workers, connect=connect,
            job_timeout=job_timeout, require_all=require_all,
            connect_retries=connect_retries, backoff=backoff,
            batch=batch, adaptive_window=adaptive_window,
        )
        try:
            runner = CampaignRunner(
                store=store,
                workers=workers,
                chunk_size=chunk_size,
                mp_context=mp_context,
                backend=resolved,
                lock=lock,
                telemetry=telemetry,
                live=live,
                trend=trend,
            )
            result = runner.run(self.scenarios())
            summary = resolved.summary() if resolved is not None else None
        finally:
            if owned:
                resolved.close()
        return Campaign(
            experiment=self, result=result, store=store,
            backend_summary=summary,
            telemetry=telemetry if isinstance(telemetry, Telemetry) else None,
        )

    def report(
        self,
        spec: Optional[ReportSpec] = None,
        *,
        store: Optional[Union[str, ResultStore]] = None,
        workers: int = 1,
        backend: Optional[Union[str, Backend]] = None,
        connect: Sequence[str] = (),
        job_timeout: float = 300.0,
        require_all: bool = False,
        connect_retries: int = 2,
        backoff: float = 0.5,
        batch: int = 1,
        adaptive_window: bool = False,
    ) -> Report:
        """Build a report, executing only scenarios the store is missing.

        With ``spec=None`` a single-table :class:`ReportSpec` over this
        experiment's scenarios is synthesized; otherwise the given spec's
        scenarios are used and this experiment only supplies the
        execution context (store/backend/workers) -- the
        ``python -m repro report`` path.
        """
        self._require_declarative("report()")
        if spec is None:
            spec = ReportSpec(
                title="Experiment report",
                scale="adhoc",
                preamble="",
                tables=[
                    TableSpec(
                        name="experiment",
                        title="Experiment results",
                        scenarios=self.scenarios(),
                        columns=list(_DEFAULT_COLUMNS),
                    )
                ],
            )
        resolved, owned = self._resolve_backend(
            backend, workers=workers, connect=connect,
            job_timeout=job_timeout, require_all=require_all,
            connect_retries=connect_retries, backoff=backoff,
            batch=batch, adaptive_window=adaptive_window,
        )
        try:
            return build_report(
                spec, store=store, workers=workers, backend=resolved
            )
        finally:
            if owned:
                resolved.close()

    # -- internals -----------------------------------------------------

    def _has_overrides(self) -> bool:
        return (
            self._adversary_obj is not None
            or self._predictions_obj is not None
            or self._key_seed is not None
        )

    def _require_no_objects(self, what: str) -> None:
        if self._adversary_obj is not None or self._predictions_obj is not None:
            raise ValueError(
                f"{what} requires a declarative experiment; adversary/"
                "prediction object overrides only support solve_one()/"
                "baseline()"
            )

    def _require_declarative(self, what: str) -> None:
        self._require_no_objects(what)
        if (
            self._key_seed is not None
            or self._max_rounds is not None
            or not self._cache
        ):
            # Campaign rows are pure functions of each spec's content
            # hash; per-call engine options cannot ride along, and
            # silently dropping them would make run() rows diverge from
            # solve_one() with no error.
            raise ValueError(
                f"{what} requires a declarative experiment; "
                "with_options(key_seed/max_rounds/cache) only supports "
                "solve_one()/baseline()"
            )

    def _require_axes(self, what: str) -> None:
        """Explicit-scenario experiments (``from_specs``) carry their
        whole identity in the specs; axis/override state would be
        silently ignored, so setting it must fail loudly."""
        if self._specs is not None:
            raise ValueError(
                f"{what} does not apply to explicit-scenario experiments "
                "(from_spec/from_specs): the specs carry the full "
                "configuration; build an Experiment from fields instead"
            )

    def _single(self, axis: str) -> Any:
        values = self._axes[axis]
        if len(values) != 1:
            raise ValueError(
                f"single executions need exactly one {axis!r} value, "
                f"got {len(values)}"
            )
        return values[0]

    def _override_ingredients(
        self, n: int, t: int
    ) -> Tuple[List[Any], List[int], Dict[str, Any]]:
        """Concrete engine ingredients for the object/explicit path."""
        if self._inputs is not None:
            inputs = list(self._inputs)
        else:
            inputs = pattern_inputs(n, self._single("pattern"))
        if self._faulty is not None:
            faulty = sorted(set(self._faulty))
        else:
            f = self._single("f")
            faulty = list(range(n - f, n)) if f is not None else []
        kwargs: Dict[str, Any] = {}
        adversary = self._adversary_obj
        if adversary is None and self._axes["adversary"] != ("silent",):
            adversary = make_adversary(
                self._single("adversary"), seed=self._single("seed")
            )
        kwargs["adversary"] = adversary
        predictions = self._predictions_obj
        if predictions is None:
            budget = self._single("budget")
            # Same per-n-fraction convention as ScenarioGrid.expand, so
            # one Experiment means one budget on either execution path.
            if isinstance(budget, float):
                budget = int(budget * n)
            if budget:
                honest = [pid for pid in range(n) if pid not in set(faulty)]
                predictions = generate(
                    self._single("generator"), n, honest, budget,
                    random.Random(self._single("seed")),
                )
        kwargs["predictions"] = predictions
        return inputs, faulty, kwargs

    def _resolve_backend(
        self,
        backend: Optional[Union[str, Backend]],
        *,
        workers: int,
        connect: Sequence[str],
        job_timeout: float,
        require_all: bool = False,
        connect_retries: int = 2,
        backoff: float = 0.5,
        batch: int = 1,
        adaptive_window: bool = False,
    ) -> Tuple[Optional[Backend], bool]:
        """The backend to run on, plus whether this call owns it."""
        if isinstance(backend, Backend):
            return backend, False
        if backend in (None, "auto") and not connect:
            return None, False  # CampaignRunner's workers-based default
        return (
            make_backend(
                backend or "auto",
                workers=workers,
                connect=list(connect),
                job_timeout=job_timeout,
                require_all=require_all,
                connect_retries=connect_retries,
                backoff=backoff,
                batch=batch,
                adaptive_window=adaptive_window,
            ),
            True,
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-stable description of a declarative experiment (the
        compiled scenarios' ``to_dict`` forms, plus the API version)."""
        self._require_declarative("to_dict()")
        return {
            "api": API_VERSION,
            "schema": SCHEMA_VERSION,
            "scenarios": [spec.to_dict() for spec in self.scenarios()],
        }

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:
        if self._specs is not None:
            return f"<Experiment specs={len(self._specs)}>"
        axes = ", ".join(
            f"{name}={list(values)!r}" if len(values) > 1
            else f"{name}={values[0]!r}"
            for name, values in self._axes.items()
        )
        return f"<Experiment {axes}>"


class Campaign:
    """The outcome of :meth:`Experiment.run`: ordered rows plus context.

    Wraps the runner's :class:`CampaignResult` with the experiment that
    produced it, the store that cached it, and aggregation shortcuts.
    """

    def __init__(
        self,
        experiment: Experiment,
        result: CampaignResult,
        store: Optional[ResultStore] = None,
        backend_summary: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.experiment = experiment
        self.result = result
        self.store = store
        #: One human line from the backend that ran the pending set
        #: (``None`` for the default serial path or when nothing ran).
        self.backend_summary = backend_summary
        #: The :class:`~repro.obs.Telemetry` the campaign recorded into,
        #: when the caller passed an instance (sink paths are closed
        #: after the run; read them with ``repro.obs.load_telemetry`` or
        #: ``python -m repro stats``).
        self.telemetry = telemetry

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """Result rows, one per scenario, in scenario order."""
        return self.result.rows

    @property
    def stats(self) -> CampaignStats:
        """Execution accounting (executed/cached/deduplicated/failed)."""
        return self.result.stats

    def ok_rows(self) -> List[Dict[str, Any]]:
        """Rows of successfully executed scenarios (no ``error`` key)."""
        return self.result.ok_rows()

    def raise_on_failure(self) -> "Campaign":
        """Raise if any scenario failed; returns self for chaining."""
        self.result.raise_on_failure()
        return self

    def summarize(
        self, by: Sequence[str] = ("n", "mode", "adversary")
    ) -> List[Dict[str, Any]]:
        """Group-by summary statistics over the successful rows."""
        return summarize(self.ok_rows(), by=list(by))

    def check_envelopes(self) -> List[Dict[str, Any]]:
        """Measured-vs-theory violations over the successful rows."""
        return check_envelopes(self.ok_rows())

    def __iter__(self):
        return iter(self.result.rows)

    def __len__(self) -> int:
        return len(self.result.rows)

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"<Campaign rows={len(self)} executed={stats.executed} "
            f"cached={stats.cached} failed={stats.failed}>"
        )


__all__ = [
    "API_VERSION",
    "AUTHENTICATED",
    "Campaign",
    "Experiment",
    "MODES",
    "Report",
    "ReportSpec",
    "ResultStore",
    "SCHEMA_VERSION",
    "ScenarioGrid",
    "ScenarioSpec",
    "SolveReport",
    "Telemetry",
    "UNAUTHENTICATED",
    "build_report",
    "solve_spec",
    "write_report",
]
